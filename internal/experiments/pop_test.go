package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ompsscluster/internal/obs"
)

// popReportsJSON renders every fig8 POP report of one engine config as a
// single concatenated JSON blob for byte comparison.
func popReportsJSON(t *testing.T, mutate func(*Scale)) string {
	t.Helper()
	sc := qs()
	if mutate != nil {
		mutate(&sc)
	}
	bundles, err := POPReports("fig8", sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, b := range bundles {
		buf.WriteString(b.Label)
		buf.WriteByte('\n')
		if err := b.Report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestPOPReportsEngineDifferential: the fig8 POP JSON must be
// byte-identical across the three simulation engines, worker counts, and
// sweep parallelism.
func TestPOPReportsEngineDifferential(t *testing.T) {
	ref := popReportsJSON(t, nil)
	if ref == "" || !strings.Contains(ref, `"apprank_pop"`) {
		t.Fatalf("degenerate reference:\n%s", ref)
	}
	cases := []struct {
		name   string
		mutate func(*Scale)
	}{
		{"goroutine", func(sc *Scale) { sc.GoroutineEngine = true }},
		{"parallel-1", func(sc *Scale) { sc.SimParallel = true; sc.SimWorkers = 1 }},
		{"parallel-4", func(sc *Scale) { sc.SimParallel = true; sc.SimWorkers = 4 }},
		{"parallel-8", func(sc *Scale) { sc.SimParallel = true; sc.SimWorkers = 8 }},
		{"sweep-parallel", func(sc *Scale) { sc.Parallel = 8 }},
	}
	for _, tc := range cases {
		if got := popReportsJSON(t, tc.mutate); got != ref {
			t.Errorf("%s: POP JSON diverged from the continuation reference", tc.name)
		}
	}
}

// TestPOPReportsUnknownID: unsupported experiments are a hard error, not
// an empty result.
func TestPOPReportsUnknownID(t *testing.T) {
	if _, err := POPReports("fig10", qs()); err == nil {
		t.Error("POPReports(fig10) should error")
	}
	if _, err := TraceBundles("nosuch", qs()); err == nil ||
		!strings.Contains(err.Error(), "efficiency") {
		t.Errorf("TraceBundles(nosuch) error should list supported ids, got %v", err)
	}
}

// TestEfficiencyExperiment: the new figure runs at quick scale, carries
// the PE/LB/CommE series triple per config, and every point satisfies
// the multiplicative decomposition.
func TestEfficiencyExperiment(t *testing.T) {
	res := Efficiency(qs())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	byLabel := map[string]*Series{}
	for i := range res.Series {
		byLabel[res.Series[i].Label] = &res.Series[i]
	}
	for _, cfg := range []string{"static", "lewi+global", "wfactoring", "twolevel"} {
		pe, lb, ce := byLabel[cfg+" PE"], byLabel[cfg+" LB"], byLabel[cfg+" CommE"]
		if pe == nil || lb == nil || ce == nil {
			t.Fatalf("missing series triple for %q", cfg)
		}
		if len(pe.Points) == 0 {
			t.Fatalf("%s PE has no points", cfg)
		}
		for i, p := range pe.Points {
			got := lb.Points[i].Y * ce.Points[i].Y
			if math.Abs(p.Y-got) > 1e-12 {
				t.Errorf("%s at imb %v: PE %v != LB x CommE %v", cfg, p.X, p.Y, got)
			}
			if p.Y <= 0 || p.Y > 1+1e-9 {
				t.Errorf("%s at imb %v: implausible PE %v", cfg, p.X, p.Y)
			}
		}
	}
	// The static baseline's load balance must degrade with imbalance
	// while lewi+global holds up better at the imbalanced end.
	st, lg := byLabel["static PE"], byLabel["lewi+global PE"]
	if last := len(st.Points) - 1; st.Points[last].Y >= st.Points[0].Y {
		t.Errorf("static PE did not degrade with imbalance: %v -> %v", st.Points[0].Y, st.Points[last].Y)
	}
	if last := len(lg.Points) - 1; lg.Points[last].Y <= st.Points[last].Y {
		t.Errorf("lewi+global PE %v should beat static %v at max imbalance",
			lg.Points[len(lg.Points)-1].Y, st.Points[last].Y)
	}
}

// metricsJSON renders the merged fig5 metrics registry under one engine
// config.
func metricsJSON(t *testing.T, mutate func(*Scale)) string {
	t.Helper()
	sc := qs()
	if mutate != nil {
		mutate(&sc)
	}
	bundles, err := TraceBundles("fig5", sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildMetrics(bundles)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBuildMetricsJSONDeterministic: the aggregated metrics registry is
// byte-identical across the sequential engines and sweep parallelism
// (structured-event recording is parallel-engine-ineligible, so the
// partitioned engine is exercised elsewhere via the POP JSON check).
func TestBuildMetricsJSONDeterministic(t *testing.T) {
	ref := metricsJSON(t, nil)
	if ref == "" {
		t.Fatal("empty metrics JSON")
	}
	if got := metricsJSON(t, func(sc *Scale) { sc.GoroutineEngine = true }); got != ref {
		t.Error("metrics JSON diverged between continuation and goroutine engines")
	}
	if got := metricsJSON(t, func(sc *Scale) { sc.Parallel = 8 }); got != ref {
		t.Error("metrics JSON diverged under sweep parallelism")
	}
	if got := metricsJSON(t, nil); got != ref {
		t.Error("metrics JSON diverged between identical invocations")
	}
}

// TestEfficiencyChromeHasPOPCounters: the traced efficiency bundles
// carry the windowed node-PE series as Perfetto counter tracks, and the
// export stays structurally valid with them included.
func TestEfficiencyChromeHasPOPCounters(t *testing.T) {
	bundles := EfficiencyTraceBundles(qs())
	if len(bundles) == 0 {
		t.Fatal("no efficiency trace bundles")
	}
	recs := make([]*obs.Recorder, len(bundles))
	labels := make([]string, len(bundles))
	for i, b := range bundles {
		recs[i], labels[i] = b.Obs, b.Label
	}
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, recs, labels); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := obs.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if !strings.Contains(buf.String(), `"PE node0"`) {
		t.Error("Chrome export is missing the PE counter tracks")
	}
}
