package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
)

// Headline reproduces the abstract's three headline claims:
//
//  1. ~46% reduction in time-to-solution for MicroPP on 32 nodes versus
//     single-node DLB, within ~7% of perfect balance;
//  2. for n-body on 16 nodes with one slow node, DLB reduces time by
//     ~16% and offloading by a further ~20% (vs the same baseline);
//  3. the synthetic benchmark within 10% of perfect balance for
//     imbalance up to 2.0 on 8 nodes.
//
// Node counts cap at the scale's MaxNodes.
func Headline(sc Scale) *Result {
	res := &Result{
		ID:     "headline",
		Title:  "Headline numbers (abstract)",
		XLabel: "claim",
		YLabel: "value",
	}

	mppNodes := 32
	if mppNodes > sc.MaxNodes {
		mppNodes = sc.MaxNodes
	}
	nbNodes := 16
	if nbNodes > sc.MaxNodes {
		nbNodes = sc.MaxNodes
	}
	synNodes := 8
	if synNodes > sc.MaxNodes {
		synNodes = sc.MaxNodes
	}
	synCfg := synConfig(sc, 2.0)

	// The eight underlying measurements are independent simulator runs;
	// sweep them together and assemble the claims from the results.
	runs := []func() simtime.Duration{
		func() simtime.Duration { t, _ := mppRun(sc, mppNodes, 1, 1, true, core.DROMLocal, nil, nil); return t },
		func() simtime.Duration { t, _ := mppRun(sc, mppNodes, 1, 4, true, core.DROMGlobal, nil, nil); return t },
		func() simtime.Duration { return mppOptimal(sc, mppNodes, 1) },
		func() simtime.Duration { return nbodyRun(sc, nbNodes, 1, false, core.DROMOff, true, false) },
		func() simtime.Duration { return nbodyRun(sc, nbNodes, 1, true, core.DROMLocal, true, false) },
		func() simtime.Duration { return nbodyRun(sc, nbNodes, 3, true, core.DROMGlobal, true, false) },
		func() simtime.Duration {
			m := cluster.New(synNodes, sc.CoresPerNode, cluster.DefaultNet())
			t, _ := synRun(sc, m, synCfg, 4, true, core.DROMGlobal, nil, nil)
			return t
		},
		func() simtime.Duration {
			m := cluster.New(synNodes, sc.CoresPerNode, cluster.DefaultNet())
			return synOptimalIter(sc, m, synCfg)
		},
	}
	vals := mapSpecs(sc, runs, func(f func() simtime.Duration) simtime.Duration { return f() }, durCodec())

	// Claim 1: MicroPP on 32 nodes (global policy, degree 4).
	dlb, deg4, opt := vals[0], vals[1], vals[2]
	reduction := 100 * (1 - float64(deg4)/float64(dlb))
	aboveOpt := 100 * (float64(deg4)/float64(opt) - 1)
	res.Series = append(res.Series,
		Series{Label: "micropp reduction vs dlb %", Points: []Point{{1, reduction}}},
		Series{Label: "micropp above perfect %", Points: []Point{{1, aboveOpt}}},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"MicroPP %d nodes: degree 4 reduces time-to-solution by %.1f%% vs DLB (paper: 46%%), %.1f%% above perfect balance (paper: 7%%)",
		mppNodes, reduction, aboveOpt))

	// Claim 2: n-body on 16 nodes, one slow node.
	base, dlbNB, deg3 := vals[3], vals[4], vals[5]
	dlbGain := 100 * (1 - float64(dlbNB)/float64(base))
	furtherGain := 100 * (float64(dlbNB) - float64(deg3)) / float64(base)
	res.Series = append(res.Series,
		Series{Label: "nbody dlb reduction %", Points: []Point{{2, dlbGain}}},
		Series{Label: "nbody further reduction %", Points: []Point{{2, furtherGain}}},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"n-body %d nodes, slow node: DLB reduces time by %.1f%% (paper: 16%%); degree 3 a further %.1f%% of baseline (paper: 20%%)",
		nbNodes, dlbGain, furtherGain))

	// Claim 3: synthetic at imbalance 2.0 on 8 nodes, degree 4.
	t, optIter := vals[6], vals[7]
	overOpt := 100 * (float64(t)/float64(optIter) - 1)
	res.Series = append(res.Series,
		Series{Label: "synthetic above perfect %", Points: []Point{{3, overOpt}}},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"synthetic %d nodes, imbalance 2.0, degree 4: %.1f%% above perfect balance (paper: within 10%%)",
		synNodes, overOpt))
	return res
}
