package experiments

import (
	"fmt"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
	"ompsscluster/internal/trace"
	"ompsscluster/internal/workloads/synthetic"
)

// The policies sweep compares the dynamic loop self-scheduling family
// (static chunking, guided, factoring, weighted factoring, and the
// two-level scheme with LeWI below) against the paper's reactive
// lewi+global stack, across imbalance levels, a slow node, and the
// resilience sweep's fault plans. It extends the evaluation with the
// classic self-scheduling baselines the paper's related work compares
// against: guided and factoring assume homogeneous workers, so their
// degradation on heterogeneous core ownership is a finding, not a bug;
// weighted factoring and the two-level scheme are the fixes.

// policyNodes is the fixed machine size of the sweep (matching the
// resilience sweep: one apprank per node, degree 3).
const policyNodes = 4

// policyScenario is one x position of the sweep.
type policyScenario struct {
	label     string
	imbalance float64
	slow      bool    // node 1 at 0.6 speed, heaviest apprank pinned there
	fault     float64 // resiliencePlan intensity; 0 = no plan
}

func policyScenarios() []policyScenario {
	return []policyScenario{
		{"imb 1.0", 1.0, false, 0},
		{"imb 2.0", 2.0, false, 0},
		{"imb 3.0", 3.0, false, 0},
		{"slow node, imb 2.0", 2.0, true, 0},
		{"faults f=0.5", 2.0, false, 0.5},
		{"faults f=1.5", 2.0, false, 1.5},
	}
}

// policyConfig is one series: a scheduling policy under test.
type policyConfig struct {
	label string
	sched balance.SelfSched
	lewi  bool
	drom  core.DROMMode
}

// policyConfigs lists the compared policies. The chunking policies run
// without DROM so the chunk sizing itself carries the balancing;
// two-level adds LeWI below, and lewi+global is the paper's stack.
func policyConfigs() []policyConfig {
	return []policyConfig{
		{"static-chunk", balance.SelfSchedStatic, false, core.DROMOff},
		{"guided", balance.SelfSchedGuided, false, core.DROMOff},
		{"factoring", balance.SelfSchedFactoring, false, core.DROMOff},
		{"wfactoring", balance.SelfSchedWeighted, false, core.DROMOff},
		{"twolevel", balance.SelfSchedTwoLevel, true, core.DROMOff},
		{"lewi+global", balance.SelfSchedOff, true, core.DROMGlobal},
	}
}

// policyConfigFor resolves a -policy flag name to its sweep series
// configuration (the twolevel and chunking entries), so the lbsim demo
// and the sweep agree on what each name means.
func policyConfigFor(name string) (policyConfig, error) {
	kind, err := balance.ParseSelfSched(name)
	if err != nil {
		return policyConfig{}, err
	}
	if kind == balance.SelfSchedOff {
		return policyConfig{}, fmt.Errorf("experiments: %q is not a runnable policy (it disables self-scheduling)", name)
	}
	for _, pc := range policyConfigs() {
		if pc.sched == kind {
			return pc, nil
		}
	}
	return policyConfig{}, fmt.Errorf("experiments: policy %q has no sweep configuration", name)
}

// policyRun executes one (scenario, policy) cell and returns the
// time-to-solution. The machine is built fresh per run — scenario and
// fault plans mutate it (speeds, cores), so sharing one across
// concurrent runs would leak mutations between cells.
func policyRun(sc Scale, scn policyScenario, plan *faults.Plan, pol policyConfig, rec *trace.Recorder, ob *obs.Recorder) (simtime.Duration, *core.ClusterRuntime, error) {
	m := cluster.New(policyNodes, sc.CoresPerNode, cluster.DefaultNet())
	synCfg := synConfig(sc, scn.imbalance)
	if scn.slow {
		m.SetSpeed(1, 0.6)
		synCfg.HeaviestApprank = 1
	}
	b := synthetic.New(synCfg, policyNodes, sc.CoresPerNode)
	rt, err := core.New(core.Config{
		Machine:         m,
		Degree:          3,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            pol.lewi,
		DROM:            pol.drom,
		SelfSched:       pol.sched,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Faults:          plan,
		Recorder:        rec,
		Obs:             ob,
	})
	if err != nil {
		return 0, nil, err
	}
	if err := rt.Run(b.Main()); err != nil {
		return 0, rt, err
	}
	return rt.Elapsed(), rt, nil
}

// Policies sweeps the self-scheduling family and the lewi+global
// baseline over the scenarios (x = scenario index; the note maps
// indices to labels). Runs that fail with a typed error contribute no
// point; the first error lands on Result.Err with a note.
func Policies(sc Scale) *Result {
	res := &Result{
		ID:     "policies",
		Title:  "Self-scheduling policy family vs lewi+global: time-to-solution by scenario",
		XLabel: "scenario",
		YLabel: "time to solution (s)",
	}
	scns := policyScenarios()
	pols := policyConfigs()
	type spec struct {
		pol policyConfig
		scn policyScenario
		x   float64
	}
	type outcome struct {
		y      float64
		grants int64
		err    error
	}
	var specs []spec
	for _, pol := range pols {
		for i, scn := range scns {
			specs = append(specs, spec{pol, scn, float64(i)})
		}
	}
	type outMirror struct {
		Y      float64 `json:"y"`
		Grants int64   `json:"grants"`
		Err    string  `json:"err,omitempty"`
	}
	outs := mapSpecs(sc, specs, func(s spec) outcome {
		t, rt, err := policyRun(sc, s.scn, resiliencePlan(sc, s.scn.fault), s.pol, nil, nil)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{y: t.Seconds(), grants: rt.Stats().ChunkGrants}
	}, jsonCodec(
		func(o outcome) outMirror { return outMirror{o.y, o.grants, errString(o.err)} },
		func(m outMirror) outcome { return outcome{y: m.Y, grants: m.Grants, err: errFromString(m.Err)} },
	))
	series := map[string]*Series{}
	res.Series = make([]Series, len(pols))
	for i, pol := range pols {
		res.Series[i] = Series{Label: pol.label}
		series[pol.label] = &res.Series[i]
	}
	var grants int64
	for i, s := range specs {
		out := outs[i]
		if out.err != nil {
			if res.Err == nil {
				res.Err = out.err
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s on %q failed: %v", s.pol.label, s.scn.label, out.err))
			continue
		}
		sr := series[s.pol.label]
		sr.Points = append(sr.Points, Point{s.x, out.y})
		grants += out.grants
	}
	for i, scn := range scns {
		res.Notes = append(res.Notes, fmt.Sprintf("x=%d: %s", i, scn.label))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d chunk-server grants across the sweep; guided/factoring are deliberately weight-blind (classic homogeneous-worker formulations)", grants))
	return res
}

// PolicyDemo runs the synthetic workload once under the named
// self-scheduling policy and once under the lewi+global baseline
// (the engine behind `lbsim -policy <name>`), optionally under a fault
// plan. Typed run errors land on Result.Err with a note.
func PolicyDemo(sc Scale, policy string, plan *faults.Plan) (*Result, error) {
	pc, err := policyConfigFor(policy)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Policy %q vs lewi+global: time-to-solution", policy)
	if plan != nil {
		title = fmt.Sprintf("Policy %q vs lewi+global under fault plan %q: time-to-solution", policy, plan.Name)
	}
	res := &Result{
		ID:     "policydemo",
		Title:  title,
		XLabel: fmt.Sprintf("policy (0=%s, 1=lewi+global)", pc.label),
		YLabel: "time to solution (s)",
	}
	scn := policyScenario{label: "imb 2.0", imbalance: 2.0}
	pols := []policyConfig{pc, {"lewi+global", balance.SelfSchedOff, true, core.DROMGlobal}}
	type outcome struct {
		t     simtime.Duration
		stats core.RunStats
		err   error
	}
	type outMirror struct {
		T     simtime.Duration `json:"t"`
		Stats runStatsMirror   `json:"stats"`
		Err   string           `json:"err,omitempty"`
	}
	outs := mapSpecs(sc, pols, func(pol policyConfig) outcome {
		t, rt, err := policyRun(sc, scn, plan, pol, nil, nil)
		var st core.RunStats
		if rt != nil {
			st = rt.Stats()
		}
		return outcome{t: t, stats: st, err: err}
	}, jsonCodec(
		func(o outcome) outMirror { return outMirror{o.t, toStatsMirror(o.stats), errString(o.err)} },
		func(m outMirror) outcome { return outcome{t: m.T, stats: fromStatsMirror(m.Stats), err: errFromString(m.Err)} },
	))
	for i, pol := range pols {
		out := outs[i]
		if out.err != nil {
			if res.Err == nil {
				res.Err = out.err
			}
			res.Notes = append(res.Notes, fmt.Sprintf("%s: run failed: %v", pol.label, out.err))
			continue
		}
		res.Series = append(res.Series, Series{
			Label:  pol.label,
			Points: []Point{{float64(i), out.t.Seconds()}},
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: %v to solution, %d chunk grants, %d fault events, %d re-offloads",
			pol.label, out.t, out.stats.ChunkGrants, out.stats.FaultEvents, out.stats.Reoffloads))
	}
	return res, nil
}

// PoliciesTraceBundles runs each policy configuration at the imbalanced
// scenario with both recorders attached, for traceview.
func PoliciesTraceBundles(sc Scale) []TraceBundle {
	scn := policyScenario{label: "imb 2.0", imbalance: 2.0}
	return sweep.Map(sc.engine(), policyConfigs(), func(pol policyConfig) TraceBundle {
		rec := trace.NewRecorder()
		ob := obs.NewRecorder(-1)
		if _, _, err := policyRun(sc, scn, nil, pol, rec, ob); err != nil {
			panic(fmt.Sprintf("experiments: traced policies run %s: %v", pol.label, err))
		}
		return TraceBundle{Label: pol.label, Obs: ob, Trace: rec}
	})
}
