package experiments

import "testing"

// TestEngineDifferentialSimParallel is the figure-level acceptance check
// for the partitioned parallel engine: rendering fig8 with SimParallel
// set must produce byte-identical CSV at any worker count. fig8 is the
// interesting figure for this check because it mixes eligible cells
// (degree-1 baseline runs engage the partitioned engine) with ineligible
// ones (degree 2-4 runs fall back to sequential), so one figure covers
// both sides of the eligibility gate.
//
// Engine counters are NOT compared between sequential and parallel:
// cross-partition sends and the partitioned collective protocol
// legitimately take different scheduling paths (outbox inserts, global
// staging events), so Events/FastPath/HeapPushes differ even though the
// simulated results are identical. What must hold: the CSV bytes, the
// run count, and — between parallel runs at different worker counts —
// every deterministic counter, because the window schedule depends only
// on event timestamps, never on how many host workers drain a window.
func TestEngineDifferentialSimParallel(t *testing.T) {
	seqCSV, seqStats := runFig8(t, func(sc *Scale) {})
	par1CSV, par1Stats := runFig8(t, func(sc *Scale) { sc.SimParallel = true; sc.SimWorkers = 1 })
	par8CSV, par8Stats := runFig8(t, func(sc *Scale) { sc.SimParallel = true; sc.SimWorkers = 8 })

	if par1CSV != seqCSV {
		t.Fatalf("fig8 CSV differs between sequential and parallel workers=1:\nseq:\n%s\npar:\n%s", seqCSV, par1CSV)
	}
	if par8CSV != seqCSV {
		t.Fatalf("fig8 CSV differs between sequential and parallel workers=8:\nseq:\n%s\npar:\n%s", seqCSV, par8CSV)
	}
	if par1Stats != par8Stats {
		t.Fatalf("deterministic engine counters differ across worker counts:\nworkers=1: %+v\nworkers=8: %+v", par1Stats, par8Stats)
	}
	if par1Stats.Runs != seqStats.Runs {
		t.Fatalf("run counts differ: seq %d, parallel %d", seqStats.Runs, par1Stats.Runs)
	}

	// The sequential render must not have touched the parallel machinery.
	if seqStats.Partitions != 0 || seqStats.Windows != 0 || seqStats.Fallbacks != 0 {
		t.Fatalf("sequential render recorded parallel counters: %+v", seqStats)
	}
	// The parallel render must have actually engaged on the degree-1
	// cells (partitions, advanced windows, cross-partition traffic) and
	// fallen back on the degree>1 cells.
	if par1Stats.Partitions == 0 || par1Stats.Windows == 0 || par1Stats.InboxEvents == 0 {
		t.Fatalf("parallel engine never engaged: %+v", par1Stats)
	}
	if par1Stats.Fallbacks == 0 {
		t.Fatalf("degree>1 cells did not record fallbacks: %+v", par1Stats)
	}
}

// TestEngineDifferentialSimParallelResilience pins the fault-injection
// figure: resilience runs under degree 3, so every run must fall back —
// SimParallel on an ineligible figure is a strict no-op on the output.
func TestEngineDifferentialSimParallelResilience(t *testing.T) {
	render := func(parallel bool) (string, EngineStats) {
		sc := qs()
		sc.SimParallel = parallel
		sc.SimWorkers = 4
		res, err := ByID("resilience", sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.CSV(), res.Engine
	}
	seqCSV, _ := render(false)
	parCSV, parStats := render(true)
	if parCSV != seqCSV {
		t.Fatalf("resilience CSV differs under SimParallel:\nseq:\n%s\npar:\n%s", seqCSV, parCSV)
	}
	if parStats.Partitions != 0 || parStats.Windows != 0 {
		t.Fatalf("ineligible figure engaged the parallel engine: %+v", parStats)
	}
	if parStats.Fallbacks == 0 {
		t.Fatalf("ineligible runs recorded no fallbacks: %+v", parStats)
	}
}
