package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/workloads/synthetic"
)

// ExtDynamicSpreading evaluates the paper's sketched "dynamic work
// spreading" extension (§5.2): instead of a fixed offloading degree, the
// helper graph grows at runtime under queue pressure. The experiment
// sweeps the imbalance on 8 nodes and compares static degrees against
// dynamic growth seeded at degree 1 — testing the paper's conjecture
// that the benefit over a well-chosen static degree is small.
func ExtDynamicSpreading(sc Scale) *Result {
	res := &Result{
		ID:     "ext-dynamic",
		Title:  "Extension: dynamic work spreading vs static degrees",
		XLabel: "imbalance",
		YLabel: "time per iteration (s)",
	}
	nodes := min8(sc)
	static1 := &Series{Label: "static degree 1"}
	static4 := &Series{Label: "static degree 4"}
	dynamic := &Series{Label: "dynamic (from degree 1)"}
	grown := &Series{Label: "helpers grown"}
	// The dynamic run feeds two series (steady time and helpers grown)
	// from one simulation, so the figure sweeps a two-valued spec rather
	// than the usual one-point runSpec.
	type dynSpec struct {
		imb  float64
		kind int // 0 = static degree 1, 1 = static degree 4, 2 = dynamic
	}
	var specs []dynSpec
	for _, imb := range []float64{1.0, 2.0, 3.0, 4.0} {
		if imb > float64(nodes) {
			continue
		}
		specs = append(specs, dynSpec{imb, 0})
		if nodes >= 4 {
			specs = append(specs, dynSpec{imb, 1})
		}
		specs = append(specs, dynSpec{imb, 2})
	}
	type dynOut struct {
		t     simtime.Duration
		grown int
	}
	type dynMirror struct {
		T     simtime.Duration `json:"t"`
		Grown int              `json:"grown"`
	}
	outs := mapSpecs(sc, specs, func(s dynSpec) dynOut {
		cfg := synConfig(sc, s.imb)
		switch s.kind {
		case 0:
			t, _ := synRun(sc, cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet()), cfg, 1, true, core.DROMLocal, nil, nil)
			return dynOut{t: t}
		case 1:
			t, _ := synRun(sc, cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet()), cfg, 4, true, core.DROMGlobal, nil, nil)
			return dynOut{t: t}
		default:
			td, rt := dynamicRun(sc, nodes, cfg)
			return dynOut{t: td, grown: rt.HelpersGrown()}
		}
	}, jsonCodec(
		func(o dynOut) dynMirror { return dynMirror{o.t, o.grown} },
		func(m dynMirror) dynOut { return dynOut{t: m.T, grown: m.Grown} },
	))
	for i, s := range specs {
		switch s.kind {
		case 0:
			static1.Points = append(static1.Points, Point{s.imb, outs[i].t.Seconds()})
		case 1:
			static4.Points = append(static4.Points, Point{s.imb, outs[i].t.Seconds()})
		default:
			dynamic.Points = append(dynamic.Points, Point{s.imb, outs[i].t.Seconds()})
			grown.Points = append(grown.Points, Point{s.imb, float64(outs[i].grown)})
		}
	}
	res.Series = append(res.Series, *static1, *static4, *dynamic, *grown)
	res.Notes = append(res.Notes,
		"dynamic growth removes the offloading-degree parameter; the paper conjectured the benefit would not cover the complexity (§5.2)")
	return res
}

// dynamicRun executes the synthetic benchmark with dynamic spreading.
func dynamicRun(sc Scale, nodes int, synCfg synthetic.Config) (simtime.Duration, *core.ClusterRuntime) {
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	b := synthetic.New(synCfg, nodes, sc.CoresPerNode)
	rt := core.MustNew(core.Config{
		Machine:         m,
		Degree:          1,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            true,
		DROM:            core.DROMGlobal,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Dynamic: core.DynamicConfig{
			Enabled:    true,
			GrowPeriod: sc.LocalPeriod,
		},
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(fmt.Sprintf("experiments: dynamic run failed: %v", err))
	}
	return b.SteadyIterTime(1), rt
}

// ExtPartitionedSolver evaluates the paper's scaling prescription for the
// global policy (§5.4.2): beyond ~32 nodes the linear program should be
// partitioned and solved in parts. The experiment runs the synthetic
// benchmark at imbalance 2.0 on the largest node count and compares
// whole-machine solving (quadratic solve cost) against 32- and 16-node
// partitions (cheaper, parallel solves, slightly less global balance).
func ExtPartitionedSolver(sc Scale) *Result {
	res := &Result{
		ID:     "ext-partition",
		Title:  "Extension: partitioned global solver at scale",
		XLabel: "partition size (nodes per solve; 0 = whole machine)",
		YLabel: "time per iteration (s)",
	}
	nodes := sc.MaxNodes
	if nodes > 64 {
		nodes = 64
	}
	timeSeries := &Series{Label: fmt.Sprintf("%dn imbalance 2.0 degree 4", nodes)}
	costSeries := Series{Label: "modelled solve cost (ms)"}
	var specs []runSpec
	for _, part := range []int{0, 32, 16, 8} {
		if part >= nodes {
			continue
		}
		specs = append(specs, runSpec{timeSeries, float64(part), func() float64 {
			return partitionedRun(sc, nodes, part).Seconds()
		}})
		groupNodes := part
		if part == 0 {
			groupNodes = nodes
		}
		f := float64(groupNodes) / 32.0
		costSeries.Points = append(costSeries.Points, Point{float64(part), 57 * f * f})
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *timeSeries, costSeries)
	res.Notes = append(res.Notes,
		"each group solves independently; the solve delay (57ms at 32 nodes, quadratic) is modelled between measurement and application")
	return res
}

// ExtDVFS models the paper's introductory motivation — system-level
// imbalance appearing *during* execution (DVFS, thermal or power capping,
// §1): halfway through a balanced run, one node's clock drops to 60%.
// Without offloading the whole application slows to the throttled node's
// pace at every barrier; with LeWI+DROM the runtime re-converges and
// shifts the throttled node's work outward within a few solver periods.
func ExtDVFS(sc Scale) *Result {
	res := &Result{
		ID:     "ext-dvfs",
		Title:  "Extension: mid-run DVFS throttling of one node",
		XLabel: "iteration",
		YLabel: "iteration time (s)",
	}
	nodes := min8(sc)
	type dvfsSpec struct {
		degree int
		lewi   bool
		drom   core.DROMMode
		label  string
	}
	specs := []dvfsSpec{
		{1, false, core.DROMOff, "baseline"},
		{4, true, core.DROMGlobal, "degree 4 lewi+drom"},
	}
	res.Series = append(res.Series, mapSpecs(sc, specs, func(sp dvfsSpec) Series {
		m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
		cfg := synConfig(sc, 1.0) // balanced application
		cfg.Iterations = sc.Iterations * 2
		b := synthetic.New(cfg, nodes, sc.CoresPerNode)
		rt := core.MustNew(core.Config{
			Machine:         m,
			Degree:          sp.degree,
			Graphs:          sc.Graphs,
			EngineStats:     sc.Engine,
			POP:             sc.POP,
			POPWindow:       sc.POPWindow,
			GoroutineEngine: sc.GoroutineEngine,
			SimParallel:     sc.SimParallel,
			SimWorkers:      sc.SimWorkers,
			LeWI:            sp.lewi,
			DROM:            sp.drom,
			GlobalPeriod:    sc.GlobalPeriod,
			LocalPeriod:     sc.LocalPeriod,
			Seed:            sc.Seed,
		})
		// Throttle node 0 halfway through the run: iteration time is
		// roughly TasksPerCore x MeanTask, so half the iterations in.
		throttleAt := simtime.Duration(cfg.Iterations/2) *
			simtime.Duration(cfg.TasksPerCore) * sc.MeanTask
		rt.Env().Schedule(throttleAt, func() { m.SetSpeed(0, 0.6) })
		if err := rt.Run(b.Main()); err != nil {
			panic(fmt.Sprintf("experiments: dvfs run failed: %v", err))
		}
		s := Series{Label: sp.label}
		ends := b.IterationEnds()
		prev := simtime.Time(0)
		for i, e := range ends {
			s.Points = append(s.Points, Point{float64(i), (e - prev).Seconds()})
			prev = e
		}
		return s
	}, seriesCodec())...)
	res.Notes = append(res.Notes,
		"node 0 drops to 0.6x speed halfway through; the balanced baseline slows to the throttled node's pace while the runtime re-balances within a few periods")
	return res
}

func partitionedRun(sc Scale, nodes, partition int) simtime.Duration {
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	b := synthetic.New(synConfig(sc, 2.0), nodes, sc.CoresPerNode)
	rt := core.MustNew(core.Config{
		Machine:         m,
		Degree:          4,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            true,
		DROM:            core.DROMGlobal,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		GlobalPartition: partition,
		Seed:            sc.Seed,
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(fmt.Sprintf("experiments: partitioned run failed: %v", err))
	}
	return b.SteadyIterTime(1)
}
