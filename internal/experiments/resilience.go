package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/workloads/synthetic"
)

// The resilience sweep measures time-to-solution of the synthetic
// benchmark under a fault plan whose severity scales with an intensity
// parameter, with and without the balancing machinery. It is not a
// figure from the paper: it extends the evaluation to the failure modes
// a production deployment of the paper's design would face (degraded
// nodes, lost cores, flaky links, dead helpers) and shows that the
// LeWI + global-DROM stack also absorbs faults, not just imbalance.

// resilienceNodes is the fixed machine size of the sweep (one apprank
// per node, degree 3, like the acceptance tests of internal/core).
const resilienceNodes = 4

// resiliencePlan builds the fault plan at the given intensity f >= 0.
// f = 0 means no plan at all (the fault-free baseline, byte-identical
// to a run without the faults subsystem armed). Event times scale with
// the mean task duration so the plan lands mid-run at every Scale:
//
//   - node 1 slows to 1/(1+f) of nominal for a window;
//   - the 0-1 link gains delay, jitter, and a drop probability
//     min(0.08 f, 0.4);
//   - node 2 permanently loses one core (two at f >= 2);
//   - at f >= 1.5 node 3's helper workers are drained mid-run.
//
// Crashes are deliberately excluded: a crash aborts the application by
// design, so time-to-solution is undefined.
func resiliencePlan(sc Scale, f float64) *faults.Plan {
	if f <= 0 {
		return nil
	}
	mt := sc.MeanTask
	window := simtime.Duration(10 * float64(mt))
	p := &faults.Plan{
		Name: fmt.Sprintf("resilience-%.2g", f),
		Events: []faults.Event{
			{Kind: faults.Slow, At: 2 * mt, Until: 2*mt + window,
				Node: 1, Speed: 1 / (1 + f)},
			{Kind: faults.Link, At: mt, Until: mt + window,
				Node: 0, NodeB: 1,
				Delay:  mt / 20,
				Jitter: simtime.Duration(float64(mt/10) * f),
				Drop:   minF(0.08*f, 0.4)},
			{Kind: faults.CoreLoss, At: 3 * mt, Node: 2, Cores: 1 + int(f/2)},
		},
	}
	if f >= 1.5 {
		p.Events = append(p.Events, faults.Event{
			Kind: faults.Drain, At: 3 * mt, Node: 3,
		})
	}
	return p
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// resilienceRun executes one run of the sweep's workload under the
// given plan and policy and returns the time-to-solution. The machine
// is built fresh for every run: fault plans mutate it (speeds, cores),
// so sharing one across runs would leak faults between configurations.
func resilienceRun(sc Scale, plan *faults.Plan, lewi bool, drom core.DROMMode) (simtime.Duration, *core.ClusterRuntime, error) {
	m := cluster.New(resilienceNodes, sc.CoresPerNode, cluster.DefaultNet())
	b := synthetic.New(synConfig(sc, 2.0), resilienceNodes, sc.CoresPerNode)
	rt, err := core.New(core.Config{
		Machine:         m,
		Degree:          3,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            lewi,
		DROM:            drom,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Faults:          plan,
	})
	if err != nil {
		return 0, nil, err
	}
	if err := rt.Run(b.Main()); err != nil {
		return 0, rt, err
	}
	return rt.Elapsed(), rt, nil
}

// resiliencePolicy is one series of the sweep.
type resiliencePolicy struct {
	label string
	lewi  bool
	drom  core.DROMMode
}

func resiliencePolicies() []resiliencePolicy {
	return []resiliencePolicy{
		{"static", false, core.DROMOff},
		{"lewi+global", true, core.DROMGlobal},
	}
}

// Resilience sweeps fault intensity and reports time-to-solution with
// the balancing machinery off ("static") and fully on ("lewi+global").
// Runs that fail with a typed error (deadlock, abort) contribute no
// point; the first such error lands on Result.Err with a note.
func Resilience(sc Scale) *Result {
	res := &Result{
		ID:     "resilience",
		Title:  "Resilience sweep: time-to-solution vs fault intensity",
		XLabel: "fault intensity",
		YLabel: "time to solution (s)",
	}
	intensities := []float64{0, 0.5, 1.0, 1.5, 2.0}
	type spec struct {
		pol resiliencePolicy
		f   float64
	}
	type outcome struct {
		y          float64
		reoffloads int64
		err        error
	}
	var specs []spec
	for _, pol := range resiliencePolicies() {
		for _, f := range intensities {
			specs = append(specs, spec{pol, f})
		}
	}
	type outMirror struct {
		Y          float64 `json:"y"`
		Reoffloads int64   `json:"reoffloads"`
		Err        string  `json:"err,omitempty"`
	}
	outs := mapSpecs(sc, specs, func(s spec) outcome {
		t, rt, err := resilienceRun(sc, resiliencePlan(sc, s.f), s.pol.lewi, s.pol.drom)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{y: t.Seconds(), reoffloads: rt.Stats().Reoffloads}
	}, jsonCodec(
		func(o outcome) outMirror { return outMirror{o.y, o.reoffloads, errString(o.err)} },
		func(m outMirror) outcome { return outcome{y: m.Y, reoffloads: m.Reoffloads, err: errFromString(m.Err)} },
	))
	series := map[string]*Series{}
	res.Series = make([]Series, len(resiliencePolicies()))
	for i, pol := range resiliencePolicies() {
		res.Series[i] = Series{Label: pol.label}
		series[pol.label] = &res.Series[i]
	}
	var reoffloads int64
	for i, s := range specs {
		out := outs[i]
		if out.err != nil {
			if res.Err == nil {
				res.Err = out.err
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s at intensity %g failed: %v", s.pol.label, s.f, out.err))
			continue
		}
		sr := series[s.pol.label]
		sr.Points = append(sr.Points, Point{s.f, out.y})
		reoffloads += out.reoffloads
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"plan per intensity f: node 1 slowed to 1/(1+f), 0-1 link drops min(0.08f, 0.4) with jitter, node 2 loses 1-2 cores, node 3 drained at f >= 1.5; %d task re-offloads across the sweep",
		reoffloads))
	return res
}

// FaultDemo runs the synthetic workload once per policy under the given
// fault plan (the engine behind `lbsim -faults <plan|preset>`). Typed
// run errors — an AbortError from a crash plan, a DeadlockError — are
// reported on Result.Err with a note, never a panic or hang.
func FaultDemo(sc Scale, plan *faults.Plan) *Result {
	res := &Result{
		ID:     "faultdemo",
		Title:  fmt.Sprintf("Fault plan %q: time-to-solution by policy", plan.Name),
		XLabel: "policy (0=static, 1=lewi+global)",
		YLabel: "time to solution (s)",
	}
	type outcome struct {
		t     simtime.Duration
		stats core.RunStats
		err   error
	}
	type outMirror struct {
		T     simtime.Duration `json:"t"`
		Stats runStatsMirror   `json:"stats"`
		Err   string           `json:"err,omitempty"`
	}
	pols := resiliencePolicies()
	outs := mapSpecs(sc, pols, func(pol resiliencePolicy) outcome {
		t, rt, err := resilienceRun(sc, plan, pol.lewi, pol.drom)
		var st core.RunStats
		if rt != nil {
			st = rt.Stats()
		}
		return outcome{t: t, stats: st, err: err}
	}, jsonCodec(
		func(o outcome) outMirror { return outMirror{o.t, toStatsMirror(o.stats), errString(o.err)} },
		func(m outMirror) outcome { return outcome{t: m.T, stats: fromStatsMirror(m.Stats), err: errFromString(m.Err)} },
	))
	for i, pol := range pols {
		out := outs[i]
		if out.err != nil {
			if res.Err == nil {
				res.Err = out.err
			}
			res.Notes = append(res.Notes, fmt.Sprintf("%s: run failed: %v", pol.label, out.err))
			continue
		}
		res.Series = append(res.Series, Series{
			Label:  pol.label,
			Points: []Point{{float64(i), out.t.Seconds()}},
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: %v to solution, %d fault events, %d re-offloads",
			pol.label, out.t, out.stats.FaultEvents, out.stats.Reoffloads))
	}
	return res
}
