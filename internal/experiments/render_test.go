package experiments

import (
	"reflect"
	"strings"
	"testing"

	"ompsscluster/internal/expander"
)

// renderFixture exercises every awkward rendering case at once: negative
// x values, a sparse series with genuinely missing points, and labels
// containing commas and quotes.
func renderFixture() *Result {
	return &Result{
		ID: "fix", Title: "Render fixture", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "plain", Points: []Point{{-1, 0.5}, {0, 1.5}, {2, 2.5}}},
			{Label: "sparse", Points: []Point{{-1, -3.25}, {2, 4}}},
			{Label: `deg 4, "local"`, Points: []Point{{0, 7}}},
		},
		Notes: []string{"fixture note"},
	}
}

func TestTableGolden(t *testing.T) {
	got := renderFixture().Table()
	want := strings.Join([]string{
		"# fix — Render fixture",
		`x                        plain            sparse    deg 4, "local"`,
		"-1                      0.5000           -3.2500                 -",
		"0                       1.5000                 -            7.0000",
		"2                       2.5000            4.0000                 -",
		"note: fixture note",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Table mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestMarkdownGolden(t *testing.T) {
	got := renderFixture().Markdown()
	want := strings.Join([]string{
		"### fix — Render fixture",
		"",
		`| x | plain | sparse | deg 4, "local" |`,
		"|---|---|---|---|",
		"| -1 | 0.5000 | -3.2500 | – |",
		"| 0 | 1.5000 | – | 7.0000 |",
		"| 2 | 2.5000 | 4.0000 | – |",
		"",
		"- fixture note",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Markdown mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCSVGolden(t *testing.T) {
	got := renderFixture().CSV()
	// RFC 4180: the comma- and quote-bearing label is quoted with inner
	// quotes doubled; plain fields stay unquoted; missing points simply
	// produce no row (long format has no holes to fill).
	want := strings.Join([]string{
		"series,x,y",
		"plain,-1,0.5",
		"plain,0,1.5",
		"plain,2,2.5",
		"sparse,-1,-3.25",
		"sparse,2,4",
		`"deg 4, ""local""",0,7`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("CSV mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLookupDistinguishesZeroFromMissing(t *testing.T) {
	s := Series{Label: "z", Points: []Point{{1, 0}}}
	if v, ok := s.Lookup(1); !ok || v != 0 {
		t.Errorf("Lookup(1) = %v, %v; want 0, true", v, ok)
	}
	if _, ok := s.Lookup(2); ok {
		t.Error("Lookup(2) reported a point that does not exist")
	}
}

// TestSweepDeterminism runs the same figures sequentially and at
// parallelism 4 and requires identical Results — the engine's collection
// by spec index makes output independent of completion order.
func TestSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig8", "headline"} {
		seq := qs()
		seq.Parallel = 1
		par := qs()
		par.Parallel = 4
		a, err := ByID(id, seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByID(id, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: parallel result differs from sequential:\nseq:\n%s\npar:\n%s",
				id, a.Table(), b.Table())
		}
		if a.Table() != b.Table() || a.CSV() != b.CSV() || a.Markdown() != b.Markdown() {
			t.Errorf("%s: rendered output differs between parallelism levels", id)
		}
	}
}

// TestSharedGraphStoreAcrossRuns runs a figure with a shared store and
// checks the result is unchanged (cached graphs are the same graphs).
func TestSharedGraphStoreAcrossRuns(t *testing.T) {
	plain := qs()
	shared := qs()
	shared.Parallel = 2
	shared.Graphs = expander.NewStore("")
	a := Fig9(plain)
	b := Fig9(shared)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("shared graph store changed the result:\nplain:\n%s\nshared:\n%s",
			a.Table(), b.Table())
	}
}
