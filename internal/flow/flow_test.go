package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaxFlowSimplePath(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(1, 2, 3, 0)
	if f := g.MaxFlow(0, 2); !approx(f, 3) {
		t.Fatalf("MaxFlow = %v, want 3", f)
	}
	if err := g.CheckConservation(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example with known max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16, 0)
	g.AddEdge(0, 2, 13, 0)
	g.AddEdge(1, 2, 10, 0)
	g.AddEdge(2, 1, 4, 0)
	g.AddEdge(1, 3, 12, 0)
	g.AddEdge(3, 2, 9, 0)
	g.AddEdge(2, 4, 14, 0)
	g.AddEdge(4, 3, 7, 0)
	g.AddEdge(3, 5, 20, 0)
	g.AddEdge(4, 5, 4, 0)
	if f := g.MaxFlow(0, 5); !approx(f, 23) {
		t.Fatalf("MaxFlow = %v, want 23", f)
	}
	if err := g.CheckConservation(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10, 0)
	g.AddEdge(2, 3, 10, 0)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("MaxFlow = %v, want 0", f)
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 2, 0)
	g.AddEdge(0, 1, 3.5, 0)
	if f := g.MaxFlow(0, 1); !approx(f, 5.5) {
		t.Fatalf("MaxFlow = %v, want 5.5", f)
	}
}

func TestFlowPerEdge(t *testing.T) {
	g := NewGraph(3)
	e1 := g.AddEdge(0, 1, 4, 0)
	e2 := g.AddEdge(1, 2, 10, 0)
	g.MaxFlow(0, 2)
	if !approx(g.Flow(e1), 4) || !approx(g.Flow(e2), 4) {
		t.Fatalf("edge flows = %v, %v; want 4, 4", g.Flow(e1), g.Flow(e2))
	}
}

func TestReset(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 1, 0)
	g.MaxFlow(0, 1)
	g.Reset()
	if g.Flow(e) != 0 {
		t.Fatal("Reset did not clear flows")
	}
	if f := g.MaxFlow(0, 1); !approx(f, 1) {
		t.Fatalf("re-solve after Reset = %v, want 1", f)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two parallel routes; the cheap one must fill first.
	g := NewGraph(4)
	cheap := g.AddEdge(0, 1, 5, 0)
	exp := g.AddEdge(0, 2, 5, 1)
	g.AddEdge(1, 3, 5, 0)
	g.AddEdge(2, 3, 5, 0)
	f, c := g.MinCostMaxFlow(0, 3)
	if !approx(f, 10) {
		t.Fatalf("flow = %v, want 10", f)
	}
	if !approx(c, 5) {
		t.Fatalf("cost = %v, want 5 (only the expensive half pays)", c)
	}
	if !approx(g.Flow(cheap), 5) || !approx(g.Flow(exp), 5) {
		t.Fatalf("edge flows = %v, %v", g.Flow(cheap), g.Flow(exp))
	}
}

func TestMinCostPartialDemand(t *testing.T) {
	// Demand smaller than cheap capacity: expensive path stays empty.
	g := NewGraph(4)
	g.AddEdge(0, 1, 10, 0)
	exp := g.AddEdge(0, 2, 10, 5)
	g.AddEdge(1, 3, 3, 0)
	g.AddEdge(2, 3, 10, 0)
	f, c := g.MinCostMaxFlow(0, 3)
	// Max flow is 13: 3 through cheap, 10 through expensive.
	if !approx(f, 13) || !approx(c, 50) {
		t.Fatalf("flow, cost = %v, %v; want 13, 50", f, c)
	}
	if !approx(g.Flow(exp), 10) {
		t.Fatalf("expensive edge flow = %v", g.Flow(exp))
	}
}

func TestMinCostReroutesThroughResiduals(t *testing.T) {
	// Classic case where a later augmentation must cancel flow.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 3)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(1, 3, 1, 3)
	g.AddEdge(2, 3, 1, 1)
	f, c := g.MinCostMaxFlow(0, 3)
	if !approx(f, 2) {
		t.Fatalf("flow = %v, want 2", f)
	}
	// Paths: 0-1-2-3 (cost 3) and 0-2?? capacity... optimal total = 3+6=...
	// Enumerate: route A 0->1->3 cost 4; route B 0->2->3 cost 4; or
	// 0->1->2->3 cost 3 plus 0->2->3 blocked (cap 1 used)... Optimal is
	// 0->1->2->3 (3) + 0->2->3 can't (edge 2->3 cap 1). So 0->1->3 (4) +
	// 0->2->3 (4) = 8, vs 0->1->2->3 (3) + 0->2... ->3 impossible.
	if !approx(c, 8) {
		t.Fatalf("cost = %v, want 8", c)
	}
	if err := g.CheckConservation(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteAllocationShape(t *testing.T) {
	// The balance package's shape: source -> appranks (demand), appranks
	// -> nodes (adjacency), nodes -> sink (capacity). 2 appranks, 2
	// nodes; apprank 0 demands 6, apprank 1 demands 2; nodes hold 4 each;
	// apprank 0 adjacent to both nodes, apprank 1 only to node 1.
	// Own-node edges cost 0, helper edges cost 1.
	g := NewGraph(6)
	s, t0 := 0, 5
	a0, a1, n0, n1 := 1, 2, 3, 4
	g.AddEdge(s, a0, 6, 0)
	g.AddEdge(s, a1, 2, 0)
	own0 := g.AddEdge(a0, n0, math.Inf(1), 0)
	help0 := g.AddEdge(a0, n1, math.Inf(1), 1)
	g.AddEdge(a1, n1, math.Inf(1), 0)
	g.AddEdge(n0, t0, 4, 0)
	g.AddEdge(n1, t0, 4, 0)
	f, c := g.MinCostMaxFlow(s, t0)
	if !approx(f, 8) {
		t.Fatalf("flow = %v, want 8 (all demand met)", f)
	}
	if !approx(c, 2) {
		t.Fatalf("cost = %v, want 2 (two offloaded cores)", c)
	}
	if !approx(g.Flow(own0), 4) || !approx(g.Flow(help0), 2) {
		t.Fatalf("own/help = %v/%v, want 4/2", g.Flow(own0), g.Flow(help0))
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGraph(0) },
		func() { NewGraph(2).AddEdge(0, 5, 1, 0) },
		func() { NewGraph(2).AddEdge(0, 1, -1, 0) },
		func() { NewGraph(2).MaxFlow(1, 1) },
		func() { NewGraph(2).MinCostMaxFlow(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: on random graphs, MinCostMaxFlow moves the same amount of flow
// as MaxFlow (it is a *maximum* flow), and both satisfy conservation.
func TestQuickMinCostMatchesMaxFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		build := func() *Graph {
			g := NewGraph(n)
			r := rand.New(rand.NewSource(seed))
			edges := n * 2
			for i := 0; i < edges; i++ {
				from, to := r.Intn(n), r.Intn(n)
				if from == to {
					continue
				}
				g.AddEdge(from, to, float64(r.Intn(10)+1), float64(r.Intn(5)))
			}
			return g
		}
		g1 := build()
		g2 := build()
		mf := g1.MaxFlow(0, n-1)
		mcf, _ := g2.MinCostMaxFlow(0, n-1)
		if !approx(mf, mcf) {
			return false
		}
		return g1.CheckConservation(0, n-1) == nil && g2.CheckConservation(0, n-1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: max flow is bounded by both the total capacity out of the
// source and into the sink.
func TestQuickMaxFlowCutBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := NewGraph(n)
		outCap, inCap := 0.0, 0.0
		for i := 0; i < n*3; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			c := rng.Float64() * 10
			g.AddEdge(from, to, c, 0)
			if from == 0 {
				outCap += c
			}
			if to == n-1 {
				inCap += c
			}
		}
		mf := g.MaxFlow(0, n-1)
		return mf <= outCap+1e-6 && mf <= inCap+1e-6 && mf >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
