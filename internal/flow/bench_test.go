package flow

import (
	"math/rand"
	"testing"
)

// buildAllocationNetwork builds the balance package's network shape for
// 64 nodes with degree 4.
func buildAllocationNetwork(seed int64) (*Graph, int, int) {
	rng := rand.New(rand.NewSource(seed))
	const nodes = 64
	g := NewGraph(2*nodes + 2)
	src, sink := 2*nodes, 2*nodes+1
	for a := 0; a < nodes; a++ {
		g.AddEdge(src, a, rng.Float64()*40, 0)
		g.AddEdge(a, nodes+a, 44, 0)
		for k := 1; k < 4; k++ {
			g.AddEdge(a, nodes+(a+k*7)%nodes, 44, 1)
		}
	}
	for n := 0; n < nodes; n++ {
		g.AddEdge(nodes+n, sink, 44, 0)
	}
	return g, src, sink
}

// BenchmarkMaxFlowAllocation measures Dinic on the allocation network.
func BenchmarkMaxFlowAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, s, t := buildAllocationNetwork(int64(i))
		g.MaxFlow(s, t)
	}
}

// BenchmarkMinCostAllocation measures SPFA min-cost max-flow on the same.
func BenchmarkMinCostAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, s, t := buildAllocationNetwork(int64(i))
		g.MinCostMaxFlow(s, t)
	}
}
