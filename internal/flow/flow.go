// Package flow implements maximum flow (Dinic's algorithm) and minimum-cost
// maximum flow (successive shortest paths with SPFA) on small directed
// graphs with floating-point capacities.
//
// The balance package formulates the paper's global core-allocation
// problem (§5.4.2) as a bisection over a feasibility flow problem:
// appranks demand cores, nodes supply them, and edges exist only where the
// expander graph permits. The min-cost variant expresses the own-node
// incentive (offloaded cores cost 1, local cores cost 0).
package flow

import (
	"fmt"
	"math"
)

const eps = 1e-9

// edge is half of an arc pair; rev indexes its reverse within the adjacency
// of to.
type edge struct {
	to   int
	cap  float64
	cost float64
	flow float64
}

// Graph is a flow network under construction. Node ids are 0..n-1.
type Graph struct {
	n     int
	edges []edge // pairs: edge 2k is forward, 2k+1 its reverse
	adj   [][]int

	// Solver scratch, sized lazily to n and reused across solves and
	// Reinit cycles (the balance bisection rebuilds and solves the same
	// network dozens of times per policy tick).
	level, iter, prevEdge []int
	dist                  []float64
	inQueue               []bool
	queue                 []int
}

// NewGraph creates a flow network with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("flow: non-positive node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// Reinit empties the graph and resizes it to n nodes, retaining the edge,
// adjacency, and solver scratch storage of previous builds. Edge ids from
// before the Reinit are invalid afterwards.
func (g *Graph) Reinit(n int) {
	if n <= 0 {
		panic("flow: non-positive node count")
	}
	g.edges = g.edges[:0]
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
	} else {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int, n-cap(g.adj))...)
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
}

// scratch sizes the solver scratch slices to the current node count.
func (g *Graph) scratch() {
	if cap(g.level) < g.n {
		g.level = make([]int, g.n)
		g.iter = make([]int, g.n)
		g.prevEdge = make([]int, g.n)
		g.dist = make([]float64, g.n)
		g.inQueue = make([]bool, g.n)
	}
	g.level = g.level[:g.n]
	g.iter = g.iter[:g.n]
	g.prevEdge = g.prevEdge[:g.n]
	g.dist = g.dist[:g.n]
	g.inQueue = g.inQueue[:g.n]
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge with the given capacity and per-unit cost,
// returning an id usable with Flow after solving.
func (g *Graph) AddEdge(from, to int, capacity, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("flow: edge %d->%d out of range", from, to))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %v", capacity))
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: to, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: from, cap: 0, cost: -cost})
	g.adj[from] = append(g.adj[from], id)
	g.adj[to] = append(g.adj[to], id+1)
	return id
}

// Flow returns the flow currently carried by the edge with the given id.
func (g *Graph) Flow(id int) float64 { return g.edges[id].flow }

// Reset zeroes all flows so the network can be solved again.
func (g *Graph) Reset() {
	for i := range g.edges {
		g.edges[i].flow = 0
	}
}

// residual returns the remaining capacity of edge id.
func (g *Graph) residual(id int) float64 { return g.edges[id].cap - g.edges[id].flow }

// push sends f along edge id, updating the reverse edge.
func (g *Graph) push(id int, f float64) {
	g.edges[id].flow += f
	g.edges[id^1].flow -= f
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm and leaves
// the per-edge flows readable via Flow.
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	total := 0.0
	g.scratch()
	level, iter := g.level, g.iter
	for g.bfs(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, math.Inf(1), level, iter)
			if f < eps {
				break
			}
			total += f
		}
	}
	return total
}

// bfs builds the level graph; reports whether t is reachable.
func (g *Graph) bfs(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := append(g.queue[:0], s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.adj[v] {
			e := &g.edges[id]
			if g.residual(id) > eps && level[e.to] < 0 {
				level[e.to] = level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	g.queue = queue[:0]
	return level[t] >= 0
}

// dfs finds one augmenting path in the level graph.
func (g *Graph) dfs(v, t int, f float64, level, iter []int) float64 {
	if v == t {
		return f
	}
	for ; iter[v] < len(g.adj[v]); iter[v]++ {
		id := g.adj[v][iter[v]]
		e := &g.edges[id]
		if g.residual(id) > eps && level[e.to] == level[v]+1 {
			d := g.dfs(e.to, t, math.Min(f, g.residual(id)), level, iter)
			if d > eps {
				g.push(id, d)
				return d
			}
		}
	}
	return 0
}

// MinCostMaxFlow computes a maximum s-t flow of minimum total cost using
// successive shortest paths (SPFA / Bellman-Ford queue variant; costs may
// not form negative cycles). It returns the flow value and its cost.
func (g *Graph) MinCostMaxFlow(s, t int) (flowVal, cost float64) {
	if s == t {
		panic("flow: source equals sink")
	}
	g.scratch()
	dist, inQueue, prevEdge := g.dist, g.inQueue, g.prevEdge
	for {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
			inQueue[i] = false
		}
		dist[s] = 0
		queue := append(g.queue[:0], s)
		inQueue[s] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			inQueue[v] = false
			for _, id := range g.adj[v] {
				e := &g.edges[id]
				if g.residual(id) > eps && dist[v]+e.cost < dist[e.to]-eps {
					dist[e.to] = dist[v] + e.cost
					prevEdge[e.to] = id
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		g.queue = queue[:0]
		if math.IsInf(dist[t], 1) {
			return flowVal, cost
		}
		// Bottleneck along the path.
		f := math.Inf(1)
		for v := t; v != s; {
			id := prevEdge[v]
			f = math.Min(f, g.residual(id))
			v = g.edges[id^1].to
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.push(id, f)
			cost += f * g.edges[id].cost
			v = g.edges[id^1].to
		}
		flowVal += f
	}
}

// CheckConservation verifies flow conservation at every node except s and
// t, and capacity constraints on every edge. It returns a descriptive
// error on the first violation. Intended for tests and invariant checks.
func (g *Graph) CheckConservation(s, t int) error {
	net := make([]float64, g.n)
	for id := 0; id < len(g.edges); id += 2 {
		e := g.edges[id]
		if e.flow < -eps || e.flow > e.cap+eps {
			return fmt.Errorf("flow: edge %d flow %v outside [0, %v]", id, e.flow, e.cap)
		}
		from := g.edges[id^1].to
		net[from] -= e.flow
		net[e.to] += e.flow
	}
	for v := 0; v < g.n; v++ {
		if v == s || v == t {
			continue
		}
		if math.Abs(net[v]) > 1e-6 {
			return fmt.Errorf("flow: conservation violated at node %d (net %v)", v, net[v])
		}
	}
	return nil
}
