// Package ompsscluster is a Go reproduction of "Transparent load
// balancing of MPI programs using OmpSs-2@Cluster and DLB" (Aguilar Mena
// et al., ICPP 2022).
//
// It provides a deterministic discrete-event simulation of an MPI +
// OmpSs-2@Cluster application running on a cluster with DLB core
// arbitration: appranks offload tasks to helper workers laid out by a
// bipartite expander graph, LeWI lends idle cores at fine grain, and the
// DROM policies (local convergence or global solver) reassign core
// ownership at coarse grain.
//
// This package is a facade re-exporting the library's primary types; the
// implementation lives under internal/. A minimal program:
//
//	machine := ompsscluster.NewMachine(4, 8) // 4 nodes x 8 cores
//	rt, err := ompsscluster.New(ompsscluster.Config{
//		Machine: machine,
//		Degree:  3,
//		LeWI:    true,
//		DROM:    ompsscluster.DROMGlobal,
//	})
//	...
//	err = rt.Run(func(app *ompsscluster.App) {
//		data := app.Alloc(1 << 20)
//		app.Submit(ompsscluster.TaskSpec{
//			Label:       "kernel",
//			Work:        50 * ompsscluster.Millisecond,
//			Accesses:    []ompsscluster.Access{{Region: data, Mode: ompsscluster.InOut}},
//			Offloadable: true,
//		})
//		app.TaskWait()
//	})
package ompsscluster

import (
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// Core runtime types (see internal/core).
type (
	// Config describes a runtime instance.
	Config = core.Config
	// ClusterRuntime is one simulated execution.
	ClusterRuntime = core.ClusterRuntime
	// App is the per-apprank programmer's-model handle.
	App = core.App
	// TaskSpec describes one task submission.
	TaskSpec = core.TaskSpec
	// DROMMode selects the ownership policy.
	DROMMode = core.DROMMode
	// DynamicConfig tunes dynamic work spreading (Config.Dynamic).
	DynamicConfig = core.DynamicConfig
	// AppSpec describes one application for multi-application
	// co-scheduling (NewMulti / RunAll).
	AppSpec = core.AppSpec
)

// DROM policy modes.
const (
	DROMOff    = core.DROMOff
	DROMLocal  = core.DROMLocal
	DROMGlobal = core.DROMGlobal
)

// Machine model types (see internal/cluster).
type (
	// Machine is the hardware model: nodes x cores with speeds.
	Machine = cluster.Machine
	// NetModel is the interconnect cost model.
	NetModel = cluster.NetModel
)

// Task access types (see internal/nanos).
type (
	// Region is a byte range in an apprank's address space.
	Region = nanos.Region
	// Access declares how a task uses a region.
	Access = nanos.Access
	// AccessMode is in/out/inout.
	AccessMode = nanos.AccessMode
)

// Access modes.
const (
	In    = nanos.In
	Out   = nanos.Out
	InOut = nanos.InOut
)

// Virtual time types (see internal/simtime).
type (
	// Time is absolute virtual time.
	Time = simtime.Time
	// Duration is a virtual time span.
	Duration = simtime.Duration
)

// Common durations.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// MPI types (see internal/simmpi).
type (
	// Comm is a communicator handle (returned by App.Comm).
	Comm = simmpi.Comm
	// Op is a reduction operator.
	Op = simmpi.Op
)

// Reduction operators and wildcards.
const (
	Sum       = simmpi.Sum
	Max       = simmpi.Max
	Min       = simmpi.Min
	AnySource = simmpi.AnySource
	AnyTag    = simmpi.AnyTag
)

// TraceRecorder captures busy/owned timelines (see internal/trace).
type TraceRecorder = trace.Recorder

// New builds a runtime from the configuration.
func New(cfg Config) (*ClusterRuntime, error) { return core.New(cfg) }

// NewMulti builds a runtime co-scheduling several independent
// applications whose workers share the per-node DLB arbiters — cores
// flow between applications via LeWI and DROM (§3.3 of the paper).
// Execute with ClusterRuntime.RunAll.
func NewMulti(cfg Config, specs []AppSpec) (*ClusterRuntime, error) {
	return core.NewMulti(cfg, specs)
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *ClusterRuntime { return core.MustNew(cfg) }

// NewMachine builds a homogeneous machine with n nodes of coresPerNode
// cores and a default Omni-Path-like interconnect.
func NewMachine(n, coresPerNode int) *Machine {
	return cluster.New(n, coresPerNode, cluster.DefaultNet())
}

// NewTraceRecorder returns an empty trace recorder to pass in Config.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
