package ompsscluster_test

import (
	"testing"

	"ompsscluster"
)

// TestFacadeQuickstart exercises the public API end to end: machine
// construction, runtime config, task submission with dependencies, MPI
// collectives, taskwait, and result accessors.
func TestFacadeQuickstart(t *testing.T) {
	machine := ompsscluster.NewMachine(2, 4)
	machine.SetSpeed(1, 0.5)
	rt, err := ompsscluster.New(ompsscluster.Config{
		Machine:      machine,
		Degree:       2,
		LeWI:         true,
		DROM:         ompsscluster.DROMGlobal,
		GlobalPeriod: 50 * ompsscluster.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, 2)
	err = rt.Run(func(app *ompsscluster.App) {
		data := app.Alloc(1 << 16)
		app.Submit(ompsscluster.TaskSpec{
			Label:       "produce",
			Work:        10 * ompsscluster.Millisecond,
			Accesses:    []ompsscluster.Access{{Region: data, Mode: ompsscluster.Out}},
			Offloadable: true,
		})
		app.Submit(ompsscluster.TaskSpec{
			Label:       "consume",
			Work:        10 * ompsscluster.Millisecond,
			Accesses:    []ompsscluster.Access{{Region: data, Mode: ompsscluster.In}},
			Offloadable: true,
		})
		app.TaskWait()
		sums[app.Rank()] = app.AllreduceFloat(1, ompsscluster.Sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 2 || sums[1] != 2 {
		t.Fatalf("allreduce = %v, want [2 2]", sums)
	}
	if rt.Elapsed() < 20*ompsscluster.Millisecond {
		t.Fatalf("elapsed %v ignores the dependency chain", rt.Elapsed())
	}
	if rt.TotalTasks() != 4 {
		t.Fatalf("tasks = %d, want 4", rt.TotalTasks())
	}
}

// TestFacadeTraceRecorder checks the recorder wiring through the facade.
func TestFacadeTraceRecorder(t *testing.T) {
	rec := ompsscluster.NewTraceRecorder()
	rt := ompsscluster.MustNew(ompsscluster.Config{
		Machine:  ompsscluster.NewMachine(1, 2),
		Recorder: rec,
	})
	err := rt.Run(func(app *ompsscluster.App) {
		r := app.Alloc(64)
		app.Submit(ompsscluster.TaskSpec{
			Label:    "t",
			Work:     5 * ompsscluster.Millisecond,
			Accesses: []ompsscluster.Access{{Region: r, Mode: ompsscluster.InOut}},
		})
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Busy(0, 0).Max() < 1 {
		t.Fatal("trace recorder captured nothing")
	}
}

// TestFacadeDeadlockDetection: a rank blocking on a message that never
// comes must surface as an error, not a hang.
func TestFacadeDeadlockDetection(t *testing.T) {
	rt := ompsscluster.MustNew(ompsscluster.Config{
		Machine: ompsscluster.NewMachine(2, 2),
	})
	err := rt.Run(func(app *ompsscluster.App) {
		if app.Rank() == 0 {
			app.Comm().Recv(1, 42) // rank 1 never sends
		}
	})
	if err == nil {
		t.Fatal("deadlocked run reported success")
	}
}

// TestFacadeDynamicSpreading checks the dynamic extension through the
// facade types.
func TestFacadeDynamicSpreading(t *testing.T) {
	rt := ompsscluster.MustNew(ompsscluster.Config{
		Machine:      ompsscluster.NewMachine(3, 4),
		Degree:       1,
		LeWI:         true,
		DROM:         ompsscluster.DROMGlobal,
		GlobalPeriod: 20 * ompsscluster.Millisecond,
		Dynamic: ompsscluster.DynamicConfig{
			Enabled:    true,
			GrowPeriod: 10 * ompsscluster.Millisecond,
		},
	})
	err := rt.Run(func(app *ompsscluster.App) {
		if app.Rank() != 0 {
			return
		}
		for i := 0; i < 120; i++ {
			r := app.Alloc(256)
			app.Submit(ompsscluster.TaskSpec{
				Label:       "heavy",
				Work:        5 * ompsscluster.Millisecond,
				Accesses:    []ompsscluster.Access{{Region: r, Mode: ompsscluster.InOut}},
				Offloadable: true,
			})
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.HelpersGrown() == 0 {
		t.Fatal("dynamic spreading inactive through the facade")
	}
}
